package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// get fetches a path from the admin listener and returns the body.
func get(t *testing.T, base, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestAdminEndpoint boots the admin listener against a live DB and
// checks the three surfaces: Prometheus exposition with the key metric
// families, the JSON snapshot, and a pprof profile.
func TestAdminEndpoint(t *testing.T) {
	db := testDB(t)
	if err := db.Append(1, 0, 5); err != nil {
		t.Fatal(err)
	}
	if err := db.Append(1, 1000, 5); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(context.Background(), "SELECT SUM_S(*) FROM Segment"); err != nil {
		t.Fatal(err)
	}

	ln, err := startAdmin(db, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	base := "http://" + ln.Addr().String()

	code, body := get(t, base, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	for _, want := range []string{
		"# TYPE modelardb_ingested_points_total counter",
		"# TYPE modelardb_query_seconds histogram",
		"# TYPE modelardb_query_stage_seconds histogram",
		"# TYPE modelardb_series gauge",
		`modelardb_query_stage_seconds_count{stage="scan"} 1`,
		"modelardb_ingested_points_total 2",
		"modelardb_queries_total 1",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, body)
		}
	}

	code, body = get(t, base, "/statusz")
	if code != http.StatusOK {
		t.Fatalf("/statusz status = %d", code)
	}
	var snap map[string]float64
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/statusz is not a JSON snapshot: %v", err)
	}
	if snap["modelardb_ingested_points_total"] != 2 {
		t.Fatalf("/statusz points = %g, want 2", snap["modelardb_ingested_points_total"])
	}

	code, body = get(t, base, "/debug/pprof/heap?debug=1")
	if code != http.StatusOK || !strings.Contains(body, "heap profile") {
		t.Fatalf("/debug/pprof/heap status = %d body prefix %q", code, body[:min(80, len(body))])
	}
}
