package main

import (
	"bufio"
	"bytes"
	"context"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"modelardb"
)

func testDB(t *testing.T) *modelardb.DB {
	t.Helper()
	db, err := modelardb.Open(modelardb.Config{
		ErrorBound: modelardb.RelBound(0),
		Dimensions: []modelardb.Dimension{{Name: "Location", Levels: []string{"Park"}}},
		Series: []modelardb.SeriesConfig{
			{SI: 1000, Members: map[string][]string{"Location": {"A"}}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func send(t *testing.T, db *modelardb.DB, line string) string {
	t.Helper()
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	handle(context.Background(), db, w, line)
	w.Flush()
	return buf.String()
}

func TestHandleAppendFlushStats(t *testing.T) {
	db := testDB(t)
	for i := 0; i < 3; i++ {
		out := send(t, db, "APPEND 1 "+strings.Repeat("0", 1)+" 5")
		_ = out
	}
	if out := send(t, db, "APPEND 1 1000 5"); out != "OK\n" {
		t.Fatalf("APPEND = %q", out)
	}
	if out := send(t, db, "FLUSH"); out != "OK\n" {
		t.Fatalf("FLUSH = %q", out)
	}
	out := send(t, db, "STATS")
	if !strings.HasPrefix(out, "OK ") {
		t.Fatalf("STATS = %q", out)
	}
	// STATS renders the registry snapshot under canonical metric names,
	// so every subsystem's instruments appear without per-field wiring.
	for _, field := range []string{
		"modelardb_series=1", "modelardb_groups=1", "modelardb_segments=",
		"modelardb_ingested_points_total=", "modelardb_cache_hits_total=",
		"modelardb_cache_misses_total=", "modelardb_queries_total=",
	} {
		if !strings.Contains(out, " "+field) {
			t.Fatalf("STATS misses %s: %q", field, out)
		}
	}
	// No WAL configured: the WAL family must be absent, not zero-stuffed.
	if strings.Contains(out, "modelardb_wal_") {
		t.Fatalf("STATS reports WAL metrics without a WAL: %q", out)
	}
}

func TestHandleSelect(t *testing.T) {
	db := testDB(t)
	send(t, db, "APPEND 1 0 5")
	send(t, db, "APPEND 1 1000 5")
	send(t, db, "FLUSH")
	out := send(t, db, "SELECT SUM_S(*) FROM Segment")
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 || lines[0] != "SUM_S(*)" || lines[1] != "10" || lines[2] != "." {
		t.Fatalf("SELECT = %q", out)
	}
}

func TestHandleErrors(t *testing.T) {
	db := testDB(t)
	cases := []string{
		"APPEND 1 2",    // arity
		"APPEND x y z",  // types
		"APPEND 99 0 1", // unknown tid
		"SELECT Nope FROM Segment",
		"BOGUS",
	}
	for _, line := range cases {
		if out := send(t, db, line); !strings.HasPrefix(out, "ERR ") {
			t.Errorf("handle(%q) = %q, want ERR", line, out)
		}
	}
}

func TestLoadCSVFile(t *testing.T) {
	db := testDB(t)
	path := filepath.Join(t.TempDir(), "d.csv")
	if err := os.WriteFile(path, []byte("tid,ts,value\n1,0,2\n1,1000,2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := loadCSV(db, path)
	if err != nil || n != 2 {
		t.Fatalf("loadCSV = %d, %v", n, err)
	}
	out := send(t, db, "SELECT COUNT_S(*) FROM Segment")
	if !strings.Contains(out, "\n2\n") {
		t.Fatalf("count after load = %q", out)
	}
}

// TestServeHangupCancelsInFlightQuery: the per-connection reader
// goroutine notices a client hangup while a query is still executing
// and cancels the connection context, aborting the in-flight scan —
// instead of the server streaming the whole result into a dead socket.
func TestServeHangupCancelsInFlightQuery(t *testing.T) {
	db := testDB(t)
	if err := db.Append(1, 0, 5); err != nil {
		t.Fatal(err)
	}
	if err := db.Append(1, 1000, 5); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	fired := make(chan struct{})
	var onceEnter, onceFire sync.Once
	// The hook blocks the scan mid-segment until the connection context
	// fires (with a fallback beyond every deadline asserted below), so
	// the hangup demonstrably lands while the query is in flight.
	db.Engine().SetScanHook(func(ctx context.Context) error {
		onceEnter.Do(func() { close(entered) })
		select {
		case <-ctx.Done():
			onceFire.Do(func() { close(fired) })
		case <-time.After(5 * time.Second):
		}
		return nil
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		serve(db, conn)
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Write([]byte("SELECT SUM_S(*) FROM Segment\n")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("the query never reached the scan")
	}
	client.Close() // hang up mid-query
	select {
	case <-fired:
	case <-time.After(2 * time.Second):
		t.Fatal("connection context did not fire on hangup")
	}
	select {
	case <-serveDone:
	case <-time.After(2 * time.Second):
		t.Fatal("serve did not return after the hangup")
	}
}

func TestLoadCSVErrors(t *testing.T) {
	db := testDB(t)
	path := filepath.Join(t.TempDir(), "bad.csv")
	os.WriteFile(path, []byte("1,0\n"), 0o644)
	if _, err := loadCSV(db, path); err == nil {
		t.Fatal("short row must fail")
	}
	if _, err := loadCSV(db, filepath.Join(t.TempDir(), "missing.csv")); err == nil {
		t.Fatal("missing file must fail")
	}
}
