package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"modelardb"
	"modelardb/internal/httpapi"
	"modelardb/internal/obs"
)

// apiServer mounts the HTTP API for db the way run does.
func apiServer(t *testing.T, db *modelardb.DB, opts httpapi.Options) *httptest.Server {
	t.Helper()
	opts.Metrics = obs.NewHTTPMetrics(db.Metrics(), httpapi.Endpoints)
	ts := httptest.NewServer(httpapi.New(db, opts).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestQueryEquivalence runs the same SQL over the line protocol, the
// HTTP JSON API and the in-process cursor and requires identical rows
// from all three: the server surfaces are views over one engine, not
// separate query paths.
func TestQueryEquivalence(t *testing.T) {
	db := testDB(t)
	ts := apiServer(t, db, httpapi.Options{})
	const sql = "SELECT Tid, TS, Value FROM DataPoint"

	// Ingest over HTTP; read it back over every surface.
	resp, err := http.Post(ts.URL+"/api/v1/append?flush=1", "application/json",
		strings.NewReader(`[{"tid":1,"ts":0,"value":2},{"tid":1,"ts":1000,"value":4},{"tid":1,"ts":2000,"value":8}]`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append status = %d", resp.StatusCode)
	}

	// Line protocol: header, tab-separated rows, ".".
	out := send(t, db, sql)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 2 || lines[len(lines)-1] != "." {
		t.Fatalf("line protocol output = %q", out)
	}
	var lineRows [][]string
	for _, l := range lines[1 : len(lines)-1] {
		lineRows = append(lineRows, strings.Split(l, "\t"))
	}

	// HTTP JSON.
	resp, err = http.Post(ts.URL+"/api/v1/query", "text/plain", strings.NewReader(sql))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var payload struct {
		Columns []string        `json:"columns"`
		Rows    [][]json.Number `json:"rows"`
		Error   string          `json:"error"`
	}
	dec := json.NewDecoder(resp.Body)
	dec.UseNumber()
	if err := dec.Decode(&payload); err != nil {
		t.Fatal(err)
	}
	if payload.Error != "" {
		t.Fatalf("HTTP query error: %s", payload.Error)
	}
	if strings.Join(payload.Columns, "\t") != lines[0] {
		t.Fatalf("HTTP columns %v != line header %q", payload.Columns, lines[0])
	}
	var httpRows [][]string
	for _, r := range payload.Rows {
		row := make([]string, len(r))
		for i, v := range r {
			row[i] = v.String()
		}
		httpRows = append(httpRows, row)
	}

	// In-process cursor, rendered with the same column-text path the
	// line protocol uses.
	rows, err := db.QueryRows(context.Background(), sql)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	var inprocRows [][]string
	for rows.Next() {
		row := make([]string, len(rows.Columns()))
		for c := range row {
			row[c] = string(rows.AppendColumnText(nil, c))
		}
		inprocRows = append(inprocRows, row)
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}

	want := fmt.Sprint([][]string{{"1", "0", "2"}, {"1", "1000", "4"}, {"1", "2000", "8"}})
	for surface, got := range map[string][][]string{
		"line protocol": lineRows,
		"HTTP JSON":     httpRows,
		"in-process":    inprocRows,
	} {
		if fmt.Sprint(got) != want {
			t.Errorf("%s rows = %v, want %v", surface, got, want)
		}
	}
}

// TestHTTPRejections covers the documented rejection statuses: 401 for
// a missing token, 429 with Retry-After once a token's bucket is dry.
func TestHTTPRejections(t *testing.T) {
	db := testDB(t)
	ts := apiServer(t, db, httpapi.Options{Tokens: []httpapi.Token{{Token: "k", Rate: 1}}})

	resp, err := http.Post(ts.URL+"/api/v1/query", "text/plain", strings.NewReader("SELECT SUM_S(*) FROM Segment"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated status = %d, want 401", resp.StatusCode)
	}

	query := func() *http.Response {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/api/v1/query", strings.NewReader("SELECT SUM_S(*) FROM Segment"))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Authorization", "Bearer k")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	if resp := query(); resp.StatusCode != http.StatusOK {
		t.Fatalf("first authorized query status = %d", resp.StatusCode)
	}
	resp = query()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

// TestMergeConfig checks flag-over-directive precedence.
func TestMergeConfig(t *testing.T) {
	cfg := modelardb.Config{
		QueryParallelism:   2,
		WALDir:             "/from/config",
		WALFsync:           "always",
		SlowQueryThreshold: time.Second,
		HTTPListen:         "127.0.0.1:1111",
	}
	// Unset flags leave every directive in force.
	merged := cfg
	mergeConfig(&merged, runOptions{parallelism: -1})
	if merged.QueryParallelism != 2 || merged.WALDir != "/from/config" ||
		merged.WALFsync != "always" || merged.SlowQueryThreshold != time.Second ||
		merged.HTTPListen != "127.0.0.1:1111" {
		t.Fatalf("unset flags changed the config: %+v", merged)
	}
	// Set flags win.
	merged = cfg
	mergeConfig(&merged, runOptions{
		dataDir: "/data", parallelism: 8, walDir: "/flag/wal",
		walFsync: "never", slowQuery: 5 * time.Second, httpListen: "127.0.0.1:2222",
	})
	if merged.Path != "/data" || merged.QueryParallelism != 8 ||
		merged.WALDir != "/flag/wal" || merged.WALFsync != "never" ||
		merged.SlowQueryThreshold != 5*time.Second || merged.HTTPListen != "127.0.0.1:2222" {
		t.Fatalf("flags did not win: %+v", merged)
	}
}
