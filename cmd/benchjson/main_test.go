package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: modelardb
cpu: Intel(R) Xeon(R) CPU @ 2.70GHz
BenchmarkCalibration-4          	   50000	     24000 ns/op
BenchmarkIngestAppendSerial-4   	 6000000	       185.3 ns/op	      24 B/op	       2 allocs/op
BenchmarkParallelSumDataPointView/workers=1-4  	     340	   3507170 ns/op	 1.000 gomaxprocs
PASS
ok  	modelardb	42.0s
`

func TestParse(t *testing.T) {
	rec, err := parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Benches) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(rec.Benches), rec.Benches)
	}
	if rec.CPUModel != "Intel(R) Xeon(R) CPU @ 2.70GHz" {
		t.Fatalf("cpu model = %q", rec.CPUModel)
	}
	by := rec.byName()
	// The -GOMAXPROCS suffix is stripped so records from machines with
	// different core counts compare by name.
	b, ok := by["BenchmarkIngestAppendSerial"]
	if !ok || b.NsPerOp != 185.3 || b.Iterations != 6000000 {
		t.Fatalf("IngestAppendSerial = %+v ok=%v", b, ok)
	}
	if b.Metrics["B/op"] != 24 || b.Metrics["allocs/op"] != 2 {
		t.Fatalf("metrics = %v", b.Metrics)
	}
	p, ok := by["BenchmarkParallelSumDataPointView/workers=1"]
	if !ok || p.Metrics["gomaxprocs"] != 1 {
		t.Fatalf("parallel bench = %+v ok=%v", p, ok)
	}
}

// writeRecord writes a minimal record JSON for compare tests.
func writeRecord(t *testing.T, dir, name string, ns map[string]float64) string {
	t.Helper()
	rec := &Record{GoOS: "linux", GoArch: "amd64", CPUs: 4}
	for bname, v := range ns {
		rec.Benches = append(rec.Benches, Benchmark{Name: bname, Iterations: 1, NsPerOp: v})
	}
	data, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareCalibrationNormalizes(t *testing.T) {
	dir := t.TempDir()
	// The current machine is 2x slower across the board, including the
	// calibration workload: normalized regression is 0% and the gate
	// passes.
	base := writeRecord(t, dir, "base.json", map[string]float64{
		"BenchmarkCalibration": 1000, "BenchmarkHot": 200,
	})
	cur := writeRecord(t, dir, "cur.json", map[string]float64{
		"BenchmarkCalibration": 2000, "BenchmarkHot": 400,
	})
	if err := compare([]string{"-baseline", base, "-current", cur, "-threshold", "15"}); err != nil {
		t.Fatalf("uniformly slower machine must pass the calibrated gate: %v", err)
	}
	// A genuine 2x regression of the hot path alone fails even though
	// the machine is equally fast.
	cur2 := writeRecord(t, dir, "cur2.json", map[string]float64{
		"BenchmarkCalibration": 1000, "BenchmarkHot": 400,
	})
	if err := compare([]string{"-baseline", base, "-current", cur2, "-threshold", "15"}); err == nil {
		t.Fatal("2x hot-path regression must fail the gate")
	}
	// A missing benchmark fails loudly instead of weakening the gate.
	cur3 := writeRecord(t, dir, "cur3.json", map[string]float64{
		"BenchmarkCalibration": 1000,
	})
	if err := compare([]string{"-baseline", base, "-current", cur3}); err == nil {
		t.Fatal("missing gated benchmark must fail")
	}
}
