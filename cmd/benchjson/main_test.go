package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: modelardb
cpu: Intel(R) Xeon(R) CPU @ 2.70GHz
BenchmarkCalibration-4          	   50000	     24000 ns/op
BenchmarkIngestAppendSerial-4   	 6000000	       185.3 ns/op	      24 B/op	       2 allocs/op
BenchmarkParallelSumDataPointView/workers=1-4  	     340	   3507170 ns/op	 1.000 gomaxprocs
PASS
ok  	modelardb	42.0s
`

func TestParse(t *testing.T) {
	rec, err := parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Benches) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(rec.Benches), rec.Benches)
	}
	if rec.CPUModel != "Intel(R) Xeon(R) CPU @ 2.70GHz" {
		t.Fatalf("cpu model = %q", rec.CPUModel)
	}
	by := rec.byName()
	// The -GOMAXPROCS suffix is stripped so records from machines with
	// different core counts compare by name.
	b, ok := by["BenchmarkIngestAppendSerial"]
	if !ok || b.NsPerOp != 185.3 || b.Iterations != 6000000 {
		t.Fatalf("IngestAppendSerial = %+v ok=%v", b, ok)
	}
	if b.Metrics["B/op"] != 24 || b.Metrics["allocs/op"] != 2 {
		t.Fatalf("metrics = %v", b.Metrics)
	}
	p, ok := by["BenchmarkParallelSumDataPointView/workers=1"]
	if !ok || p.Metrics["gomaxprocs"] != 1 {
		t.Fatalf("parallel bench = %+v ok=%v", p, ok)
	}
}

// writeRecord writes a minimal record JSON for compare tests.
func writeRecord(t *testing.T, dir, name string, ns map[string]float64) string {
	t.Helper()
	rec := &Record{GoOS: "linux", GoArch: "amd64", CPUs: 4}
	for bname, v := range ns {
		rec.Benches = append(rec.Benches, Benchmark{Name: bname, Iterations: 1, NsPerOp: v})
	}
	data, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareCalibrationNormalizes(t *testing.T) {
	dir := t.TempDir()
	// The current machine is 2x slower across the board, including the
	// calibration workload: normalized regression is 0% and the gate
	// passes.
	base := writeRecord(t, dir, "base.json", map[string]float64{
		"BenchmarkCalibration": 1000, "BenchmarkHot": 200,
	})
	cur := writeRecord(t, dir, "cur.json", map[string]float64{
		"BenchmarkCalibration": 2000, "BenchmarkHot": 400,
	})
	if err := compare([]string{"-baseline", base, "-current", cur, "-threshold", "15"}); err != nil {
		t.Fatalf("uniformly slower machine must pass the calibrated gate: %v", err)
	}
	// A genuine 2x regression of the hot path alone fails even though
	// the machine is equally fast.
	cur2 := writeRecord(t, dir, "cur2.json", map[string]float64{
		"BenchmarkCalibration": 1000, "BenchmarkHot": 400,
	})
	if err := compare([]string{"-baseline", base, "-current", cur2, "-threshold", "15"}); err == nil {
		t.Fatal("2x hot-path regression must fail the gate")
	}
	// A missing benchmark fails loudly instead of weakening the gate.
	cur3 := writeRecord(t, dir, "cur3.json", map[string]float64{
		"BenchmarkCalibration": 1000,
	})
	if err := compare([]string{"-baseline", base, "-current", cur3}); err == nil {
		t.Fatal("missing gated benchmark must fail")
	}
}

// writeBenches writes a record with full Benchmark values (metrics
// included) for the allocation-gate tests.
func writeBenches(t *testing.T, dir, name string, benches []Benchmark) string {
	t.Helper()
	rec := &Record{GoOS: "linux", GoArch: "amd64", CPUs: 4, Benches: benches}
	data, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareGatesAllocations(t *testing.T) {
	dir := t.TempDir()
	base := writeBenches(t, dir, "base.json", []Benchmark{
		{Name: "BenchmarkCalibration", Iterations: 1, NsPerOp: 1000},
		{Name: "BenchmarkHot", Iterations: 1, NsPerOp: 200,
			Metrics: map[string]float64{"B/op": 1024, "allocs/op": 100}},
	})
	// A 2x-slower machine scales ns/op via calibration, but it must NOT
	// scale the allocation gate: allocs doubled is a real regression no
	// matter the machine, so this fails.
	cur := writeBenches(t, dir, "cur.json", []Benchmark{
		{Name: "BenchmarkCalibration", Iterations: 1, NsPerOp: 2000},
		{Name: "BenchmarkHot", Iterations: 1, NsPerOp: 400,
			Metrics: map[string]float64{"B/op": 1024, "allocs/op": 200}},
	})
	if err := compare([]string{"-baseline", base, "-current", cur, "-threshold", "15"}); err == nil {
		t.Fatal("2x allocs/op regression must fail regardless of machine scale")
	}
	// Fewer allocations than baseline always passes.
	cur2 := writeBenches(t, dir, "cur2.json", []Benchmark{
		{Name: "BenchmarkCalibration", Iterations: 1, NsPerOp: 1000},
		{Name: "BenchmarkHot", Iterations: 1, NsPerOp: 200,
			Metrics: map[string]float64{"B/op": 64, "allocs/op": 2}},
	})
	if err := compare([]string{"-baseline", base, "-current", cur2, "-threshold", "15"}); err != nil {
		t.Fatalf("improved allocations must pass: %v", err)
	}
	// A baseline metric missing from the current run fails loudly — a
	// dropped b.ReportAllocs must not silently weaken the gate.
	cur3 := writeBenches(t, dir, "cur3.json", []Benchmark{
		{Name: "BenchmarkCalibration", Iterations: 1, NsPerOp: 1000},
		{Name: "BenchmarkHot", Iterations: 1, NsPerOp: 200},
	})
	if err := compare([]string{"-baseline", base, "-current", cur3, "-threshold", "15"}); err == nil {
		t.Fatal("allocation metric dropped from current run must fail")
	}
}

func TestCompareGatesAllowlistedMetrics(t *testing.T) {
	dir := t.TempDir()
	base := writeBenches(t, dir, "base.json", []Benchmark{
		{Name: "BenchmarkCalibration", Iterations: 1, NsPerOp: 1000},
		{Name: "BenchmarkGroupCommit", Iterations: 1, NsPerOp: 200,
			Metrics: map[string]float64{"fsyncs/point": 0.02, "q-p99-ms": 5}},
	})
	// fsyncs/point doubled: beyond the 30% metric threshold, fails even
	// though ns/op is unchanged. q-p99-ms stays informational — its 10x
	// jump alone must not fail the gate.
	cur := writeBenches(t, dir, "cur.json", []Benchmark{
		{Name: "BenchmarkCalibration", Iterations: 1, NsPerOp: 1000},
		{Name: "BenchmarkGroupCommit", Iterations: 1, NsPerOp: 200,
			Metrics: map[string]float64{"fsyncs/point": 0.04, "q-p99-ms": 50}},
	})
	if err := compare([]string{"-baseline", base, "-current", cur}); err == nil {
		t.Fatal("2x fsyncs/point regression must fail the metric gate")
	}
	// Within the metric threshold: passes.
	cur2 := writeBenches(t, dir, "cur2.json", []Benchmark{
		{Name: "BenchmarkCalibration", Iterations: 1, NsPerOp: 1000},
		{Name: "BenchmarkGroupCommit", Iterations: 1, NsPerOp: 200,
			Metrics: map[string]float64{"fsyncs/point": 0.025, "q-p99-ms": 50}},
	})
	if err := compare([]string{"-baseline", base, "-current", cur2}); err != nil {
		t.Fatalf("+25%% fsyncs/point within the 30%% metric threshold must pass: %v", err)
	}
	// A gated metric dropped from the current run fails loudly — a
	// removed b.ReportMetric must not silently weaken the gate.
	cur3 := writeBenches(t, dir, "cur3.json", []Benchmark{
		{Name: "BenchmarkCalibration", Iterations: 1, NsPerOp: 1000},
		{Name: "BenchmarkGroupCommit", Iterations: 1, NsPerOp: 200,
			Metrics: map[string]float64{"q-p99-ms": 5}},
	})
	if err := compare([]string{"-baseline", base, "-current", cur3}); err == nil {
		t.Fatal("gated metric missing from current run must fail")
	}
	// -gate-metrics "" demotes everything back to informational.
	if err := compare([]string{"-baseline", base, "-current", cur, "-gate-metrics", ""}); err != nil {
		t.Fatalf("empty allowlist must not gate custom metrics: %v", err)
	}
	// A tighter -metric-threshold fails what the default admits.
	if err := compare([]string{"-baseline", base, "-current", cur2, "-metric-threshold", "10"}); err == nil {
		t.Fatal("+25% fsyncs/point must fail a 10% metric threshold")
	}
}

func TestCompareZeroAllocBaseline(t *testing.T) {
	dir := t.TempDir()
	base := writeBenches(t, dir, "base.json", []Benchmark{
		{Name: "BenchmarkTight", Iterations: 1, NsPerOp: 100,
			Metrics: map[string]float64{"B/op": 0, "allocs/op": 0}},
	})
	// Zero-alloc baseline: any current allocation fails — there is no
	// ratio to threshold against zero.
	cur := writeBenches(t, dir, "cur.json", []Benchmark{
		{Name: "BenchmarkTight", Iterations: 1, NsPerOp: 100,
			Metrics: map[string]float64{"B/op": 16, "allocs/op": 1}},
	})
	if err := compare([]string{"-baseline", base, "-current", cur, "-threshold", "15"}); err == nil {
		t.Fatal("allocation introduced against a zero-alloc baseline must fail")
	}
	// Still zero: passes.
	cur2 := writeBenches(t, dir, "cur2.json", []Benchmark{
		{Name: "BenchmarkTight", Iterations: 1, NsPerOp: 100,
			Metrics: map[string]float64{"B/op": 0, "allocs/op": 0}},
	})
	if err := compare([]string{"-baseline", base, "-current", cur2, "-threshold", "15"}); err != nil {
		t.Fatalf("zero-alloc fixpoint must pass: %v", err)
	}
}
