// Command benchjson turns `go test -bench` output into a stable JSON
// record and compares two such records as a regression gate — the
// machinery behind `make bench-record` (the CI benchmark artifact) and
// `make bench-compare` (fail the build on a hot-path regression).
//
//	benchjson record  -o BENCH_results.json [-md BENCH_results.md] [bench.txt]
//	benchjson compare -baseline bench/baseline.json -current BENCH_gate.json \
//	                  [-threshold 15] [-calibration BenchmarkCalibration]
//
// record parses benchmark result lines (name, iterations, then
// value/unit pairs such as "185.3 ns/op" or "24 B/op") from a file or
// stdin, strips the -GOMAXPROCS suffix from names so records taken on
// machines with different core counts stay comparable, and writes one
// JSON document plus an optional markdown table.
//
// compare fails (exit 1) when a benchmark's ns/op regressed more than
// threshold percent against the baseline. When both records contain
// the calibration benchmark — a fixed CPU-bound workload
// (BenchmarkCalibration) — each ratio is first normalized by the
// calibration ratio, cancelling out raw machine-speed differences, so
// a baseline recorded on one machine gates runs on another. Benchmarks
// that are faster than baseline never fail, and a benchmark present in
// the baseline but missing from the current run fails loudly — a
// renamed benchmark must not silently weaken the gate.
//
// B/op and allocs/op are gated with the same threshold but WITHOUT
// calibration scaling: allocation counts and bytes are properties of
// the code, not of machine speed, so they compare raw across
// machines. A benchmark whose baseline carries an allocation metric
// must report it in the current run too (a dropped b.ReportAllocs
// must not silently weaken the gate), and a baseline of zero allocs
// fails on any current allocation at all — there is no ratio to
// threshold against zero.
//
// Custom metrics reported via b.ReportMetric (anything that is not
// ns/op, B/op or allocs/op — e.g. fsyncs/point from the WAL
// group-commit benchmark or q-p99-ms from the sustained-load
// scenario) are printed side by side when both records carry them.
// By default they are informational, but metrics named in the
// -gate-metrics allowlist (default "fsyncs/point") are gated like
// allocations: compared raw — they are workload properties, not
// machine speeds, so the calibration normalization does not apply —
// against their own -metric-threshold. The separate threshold exists
// because behavioural metrics such as fsyncs/point depend on timing
// (how many appends a group commit coalesces) and need more headroom
// than ns/op. A gated metric present in the baseline but missing from
// the current run fails loudly, and a baseline of zero fails on any
// current value at all.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Record is one benchmark run's parsed results.
type Record struct {
	GoOS      string      `json:"goos"`
	GoArch    string      `json:"goarch"`
	GoVersion string      `json:"goversion"`
	CPUs      int         `json:"cpus"`
	CPUModel  string      `json:"cpu_model,omitempty"`
	Benches   []Benchmark `json:"benchmarks"`
}

// Benchmark is one benchmark result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "record":
		err = record(os.Args[2:])
	case "compare":
		err = compare(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  benchjson record  -o out.json [-md out.md] [bench.txt]
  benchjson compare -baseline base.json -current cur.json [-threshold 15] [-calibration BenchmarkCalibration]
                    [-gate-metrics fsyncs/point] [-metric-threshold 30]`)
	os.Exit(2)
}

func record(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	out := fs.String("o", "", "output JSON path (required)")
	md := fs.String("md", "", "optional markdown table path")
	fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("record: -o is required")
	}
	in := io.Reader(os.Stdin)
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	rec, err := parse(in)
	if err != nil {
		return err
	}
	if len(rec.Benches) == 0 {
		return fmt.Errorf("record: no benchmark result lines found")
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	if *md != "" {
		if err := os.WriteFile(*md, []byte(markdown(rec)), 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("benchjson: recorded %d benchmarks to %s (%s/%s, %d CPUs)\n",
		len(rec.Benches), *out, rec.GoOS, rec.GoArch, rec.CPUs)
	return nil
}

// maxprocsSuffix is the trailing -N Go appends to benchmark names.
var maxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parse extracts benchmark result lines from `go test -bench` output.
func parse(r io.Reader) (*Record, error) {
	rec := &Record{
		GoOS:      runtime.GOOS,
		GoArch:    runtime.GOARCH,
		GoVersion: runtime.Version(),
		CPUs:      runtime.NumCPU(),
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			rec.CPUModel = cpu
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// name, iterations, then (value, unit) pairs.
		if len(fields) < 4 || (len(fields)-2)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{
			Name:       maxprocsSuffix.ReplaceAllString(fields[0], ""),
			Iterations: iters,
			Metrics:    map[string]float64{},
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			if fields[i+1] == "ns/op" {
				b.NsPerOp = v
			} else {
				b.Metrics[fields[i+1]] = v
			}
		}
		if len(b.Metrics) == 0 {
			b.Metrics = nil
		}
		if b.NsPerOp > 0 {
			rec.Benches = append(rec.Benches, b)
		}
	}
	return rec, sc.Err()
}

// customMetrics returns a benchmark's non-standard metric names in
// sorted order: the b.ReportMetric units (fsyncs/point, q-p99-ms, …),
// excluding the allocation counters every -benchmem run carries.
func customMetrics(b Benchmark) []string {
	var names []string
	for name := range b.Metrics {
		if name == "B/op" || name == "allocs/op" {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// markdown renders the record as the table BENCHMARKS.md embeds.
func markdown(rec *Record) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# Benchmark record — %s/%s, %d CPUs, %s\n\n",
		rec.GoOS, rec.GoArch, rec.CPUs, rec.GoVersion)
	if rec.CPUModel != "" {
		fmt.Fprintf(&sb, "CPU: %s\n\n", rec.CPUModel)
	}
	sb.WriteString("| benchmark | ns/op | iterations | metrics |\n|---|---:|---:|---|\n")
	for _, b := range rec.Benches {
		var extras []string
		for _, m := range customMetrics(b) {
			extras = append(extras, fmt.Sprintf("%s=%.4g", m, b.Metrics[m]))
		}
		fmt.Fprintf(&sb, "| %s | %.0f | %d | %s |\n",
			b.Name, b.NsPerOp, b.Iterations, strings.Join(extras, ", "))
	}
	return sb.String()
}

func load(path string) (*Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rec := &Record{}
	if err := json.Unmarshal(data, rec); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rec, nil
}

func (r *Record) byName() map[string]Benchmark {
	out := make(map[string]Benchmark, len(r.Benches))
	for _, b := range r.Benches {
		out[b.Name] = b
	}
	return out
}

func compare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	basePath := fs.String("baseline", "", "baseline JSON (required)")
	curPath := fs.String("current", "", "current JSON (required)")
	threshold := fs.Float64("threshold", 15, "max allowed per-op regression in percent")
	calibration := fs.String("calibration", "BenchmarkCalibration", "calibration benchmark used to normalize machine speed; \"\" disables")
	gateMetrics := fs.String("gate-metrics", "fsyncs/point",
		"comma-separated custom metrics gated against -metric-threshold instead of printed informationally; \"\" disables")
	metricThreshold := fs.Float64("metric-threshold", 30,
		"max allowed regression in percent for -gate-metrics metrics")
	fs.Parse(args)
	if *basePath == "" || *curPath == "" {
		return fmt.Errorf("compare: -baseline and -current are required")
	}
	base, err := load(*basePath)
	if err != nil {
		return err
	}
	cur, err := load(*curPath)
	if err != nil {
		return err
	}
	baseBy, curBy := base.byName(), cur.byName()
	gated := map[string]bool{}
	for _, m := range strings.Split(*gateMetrics, ",") {
		if m = strings.TrimSpace(m); m != "" {
			gated[m] = true
		}
	}

	// Machine-speed normalization: scale is how much slower the current
	// machine runs the fixed calibration workload than the baseline
	// machine did; every per-benchmark ratio is divided by it.
	scale := 1.0
	if *calibration != "" {
		cb, okB := baseBy[*calibration]
		cc, okC := curBy[*calibration]
		if okB && okC && cb.NsPerOp > 0 {
			scale = cc.NsPerOp / cb.NsPerOp
			fmt.Printf("calibration: baseline %.0f ns/op, current %.0f ns/op, machine scale %.3f\n",
				cb.NsPerOp, cc.NsPerOp, scale)
		} else {
			missing := *basePath
			if okB {
				missing = *curPath
			}
			fmt.Printf("calibration %q missing from %s; comparing raw ns/op\n", *calibration, missing)
		}
	}

	names := make([]string, 0, len(baseBy))
	for name := range baseBy {
		names = append(names, name)
	}
	sort.Strings(names)
	failed := 0
	for _, name := range names {
		if name == *calibration {
			continue
		}
		b := baseBy[name]
		c, ok := curBy[name]
		if !ok {
			fmt.Printf("FAIL %-50s missing from current run (renamed? update the baseline)\n", name)
			failed++
			continue
		}
		ratio := c.NsPerOp / b.NsPerOp / scale
		delta := (ratio - 1) * 100
		status := "ok  "
		if delta > *threshold {
			status = "FAIL"
			failed++
		}
		fmt.Printf("%s %-50s base %12.1f  cur %12.1f  normalized %+6.1f%%\n",
			status, name, b.NsPerOp, c.NsPerOp, delta)
		// Allocation gates: raw comparison, no machine-speed scaling.
		for _, m := range []string{"B/op", "allocs/op"} {
			bv, ok := b.Metrics[m]
			if !ok {
				continue
			}
			cv, ok := c.Metrics[m]
			if !ok {
				fmt.Printf("FAIL %-50s %s in baseline but missing from current run\n", "  "+name, m)
				failed++
				continue
			}
			var mDelta float64
			mStatus := "ok  "
			switch {
			case bv == 0 && cv > 0:
				mStatus = "FAIL"
				failed++
				mDelta = 100
			case bv == 0:
				mDelta = 0
			default:
				mDelta = (cv/bv - 1) * 100
				if mDelta > *threshold {
					mStatus = "FAIL"
					failed++
				}
			}
			fmt.Printf("%s %-50s base %12.0f  cur %12.0f  raw        %+6.1f%%  (%s)\n",
				mStatus, "  "+name, bv, cv, mDelta, m)
		}
		// Custom metrics: allowlisted ones gate raw (no calibration — they
		// are workload properties) against their own threshold; the rest
		// print informationally when both records carry them.
		for _, m := range customMetrics(b) {
			bv := b.Metrics[m]
			cv, ok := c.Metrics[m]
			if !gated[m] {
				if ok {
					fmt.Printf("     %-50s base %12.4g  cur %12.4g  (%s, informational)\n",
						"  "+m, bv, cv, m)
				}
				continue
			}
			if !ok {
				fmt.Printf("FAIL %-50s %s in baseline but missing from current run\n", "  "+name, m)
				failed++
				continue
			}
			var mDelta float64
			mStatus := "ok  "
			switch {
			case bv == 0 && cv > 0:
				mStatus = "FAIL"
				failed++
				mDelta = 100
			case bv == 0:
				mDelta = 0
			default:
				mDelta = (cv/bv - 1) * 100
				if mDelta > *metricThreshold {
					mStatus = "FAIL"
					failed++
				}
			}
			fmt.Printf("%s %-50s base %12.4g  cur %12.4g  raw        %+6.1f%%  (%s, gated at %.0f%%)\n",
				mStatus, "  "+name, bv, cv, mDelta, m, *metricThreshold)
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d benchmark(s) regressed more than %.0f%% (or went missing)", failed, *threshold)
	}
	fmt.Printf("all %d gated benchmarks within %.0f%% of baseline\n", len(names), *threshold)
	return nil
}
