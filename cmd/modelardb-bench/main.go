// Command modelardb-bench regenerates the paper's evaluation (§7): one
// experiment per table and figure, printed as aligned text tables.
//
// Usage:
//
//	modelardb-bench                      # the full suite, default scale
//	modelardb-bench -scale quick         # fast smoke run
//	modelardb-bench -experiments fig14,fig19
//	modelardb-bench -out results.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"modelardb/internal/harness"
)

func main() {
	scaleName := flag.String("scale", "default", "workload scale: quick or default")
	experiments := flag.String("experiments", "", "comma-separated experiment ids (default: all)")
	out := flag.String("out", "", "also write results to this file")
	epEntities := flag.Int("ep-entities", 0, "override EP entity count")
	epTicks := flag.Int("ep-ticks", 0, "override EP tick count")
	ehSeries := flag.Int("eh-series", 0, "override EH series count")
	ehTicks := flag.Int("eh-ticks", 0, "override EH tick count")
	flag.Parse()

	var scale harness.Scale
	switch *scaleName {
	case "quick":
		scale = harness.QuickScale()
	case "default":
		scale = harness.DefaultScale()
	default:
		log.Fatalf("unknown scale %q", *scaleName)
	}
	if *epEntities > 0 {
		scale.EPEntities = *epEntities
	}
	if *epTicks > 0 {
		scale.EPTicks = *epTicks
	}
	if *ehSeries > 0 {
		scale.EHSeries = *ehSeries
	}
	if *ehTicks > 0 {
		scale.EHTicks = *ehTicks
	}

	selected := map[string]bool{}
	for _, id := range strings.Split(*experiments, ",") {
		if id = strings.TrimSpace(id); id != "" {
			selected[id] = true
		}
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	fmt.Fprintf(w, "ModelarDB+ evaluation harness — scale %s (EP: %d entities x %d ticks, EH: %d series x %d ticks)\n\n",
		*scaleName, scale.EPEntities, scale.EPTicks, scale.EHSeries, scale.EHTicks)
	start := time.Now()
	ran := 0
	for _, exp := range harness.All() {
		if len(selected) > 0 && !selected[exp.ID] {
			continue
		}
		expStart := time.Now()
		table, err := exp.Run(scale)
		if err != nil {
			log.Fatalf("%s: %v", exp.ID, err)
		}
		table.Notes = append(table.Notes, fmt.Sprintf("experiment wall time: %s", time.Since(expStart).Round(time.Millisecond)))
		table.Fprint(w)
		ran++
	}
	fmt.Fprintf(w, "ran %d experiments in %s\n", ran, time.Since(start).Round(time.Millisecond))
}
