// Command modelardb-cli is an interactive client for modelardbd: it
// sends each input line to the server and prints the response.
//
// Usage:
//
//	modelardb-cli [-addr 127.0.0.1:8989]
//	echo "SELECT Tid, AVG_S(*) FROM Segment GROUP BY Tid" | modelardb-cli
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strings"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8989", "modelardbd address")
	flag.Parse()
	conn, err := net.Dial("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	in := bufio.NewScanner(os.Stdin)
	out := bufio.NewScanner(conn)
	out.Buffer(make([]byte, 1<<20), 1<<20)
	w := bufio.NewWriter(conn)
	for in.Scan() {
		line := strings.TrimSpace(in.Text())
		if line == "" {
			continue
		}
		fmt.Fprintln(w, line)
		if err := w.Flush(); err != nil {
			log.Fatal(err)
		}
		if strings.EqualFold(line, "QUIT") {
			return
		}
		if !printResponse(line, out) {
			return
		}
	}
}

// printResponse reads one response; queries are multi-line terminated
// by ".", everything else is a single line.
func printResponse(request string, out *bufio.Scanner) bool {
	multi := strings.HasPrefix(strings.ToUpper(request), "SELECT")
	for out.Scan() {
		line := out.Text()
		if multi && line == "." {
			return true
		}
		fmt.Println(line)
		if !multi || strings.HasPrefix(line, "ERR ") {
			return true
		}
	}
	return false
}
