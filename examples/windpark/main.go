// Windpark: the paper's motivating scenario — a fleet of wind turbines
// produces correlated, dimensioned time series, and analysts run OLAP
// queries at different levels of the dimension hierarchies (§6.3,
// M-AGG). The example generates an EP-like data set, partitions it
// with member-based correlation clauses, and then drills down from
// category-level monthly aggregates to individual series, showing that
// aggregates below the grouping level work unchanged.
package main

import (
	"context"
	"fmt"
	"log"

	"modelardb"
	"modelardb/internal/core"
	"modelardb/internal/tsgen"
)

func main() {
	// An EP-like fleet: 6 entities x 4 measures, one day at SI = 60 s.
	dataset := tsgen.EP(tsgen.EPConfig{Entities: 6, Ticks: 1440, Seed: 7, GapRate: 0.001})
	cfg := modelardb.Config{
		ErrorBound: modelardb.RelBound(5),
		Dimensions: dataset.Dimensions,
		// The paper's EP setup: measures of one entity sharing a
		// category are correlated (§7.3).
		Correlations: []string{
			"Production 0, Measure 1 Production",
			"Production 0, Measure 1 Temperature",
		},
	}
	for _, s := range dataset.Series {
		cfg.Series = append(cfg.Series, modelardb.SeriesConfig{
			SI: s.SI, Source: s.Source, Members: s.Members,
		})
	}
	db, err := modelardb.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Ingest in batches through the group-sharded batch path: one shard
	// lock acquisition per group per batch instead of one per point.
	ctx := context.Background()
	batch := make([]modelardb.DataPoint, 0, 4096)
	err = dataset.Points(func(p core.DataPoint) error {
		batch = append(batch, p)
		if len(batch) == cap(batch) {
			if err := db.AppendBatch(ctx, batch); err != nil {
				return err
			}
			batch = batch[:0]
		}
		return nil
	})
	if err == nil {
		err = db.AppendBatch(ctx, batch)
	}
	if err != nil {
		log.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		log.Fatal(err)
	}
	stats, _ := db.Stats()
	fmt.Printf("%d series in %d groups, %d segments, %d bytes for %d points\n\n",
		stats.Series, stats.Groups, stats.Segments, stats.StorageBytes, stats.DataPoints)

	queries := []struct {
		label string
		sql   string
	}{
		{"Roll-up: energy production per category per day",
			"SELECT Category, CUBE_SUM_DAY(*) FROM Segment WHERE Category = 'Production' GROUP BY Category"},
		{"Drill-down one level below the grouping: per concrete measure",
			"SELECT Concrete, SUM_S(*) FROM Segment WHERE Category = 'Production' GROUP BY Concrete ORDER BY Concrete"},
		{"Slice one entity across measures",
			"SELECT Concrete, AVG_S(*) FROM Segment WHERE Entity = 'E0000' GROUP BY Concrete ORDER BY Concrete"},
		{"Dice: hourly production of one entity",
			"SELECT CUBE_SUM_HOUR(*) FROM Segment WHERE Entity = 'E0000' AND Category = 'Production' LIMIT 5"},
		{"Which models were selected per series group",
			"SELECT Mid, COUNT_S(*) FROM Segment GROUP BY Mid ORDER BY Mid"},
	}
	for _, q := range queries {
		res, err := db.Query(ctx, q.sql)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("-- %s\n   %s\n", q.label, q.sql)
		fmt.Printf("   %v\n", res.Columns)
		for i, row := range res.Rows {
			if i >= 6 {
				fmt.Printf("   ... (%d more rows)\n", len(res.Rows)-i)
				break
			}
			fmt.Printf("   %v\n", row)
		}
		fmt.Println()
	}

	usage, err := db.ModelUsage()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model usage: %v\n", usage)
}
