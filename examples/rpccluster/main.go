// RPC cluster: multi-process deployment over the framed transport. The
// workers of examples/cluster live in one process; here each worker
// serves its database over TCP (cluster.Serve) and the master dials
// them (cluster.Dial), validates queries before any network traffic,
// scatters them fail-fast and can cancel an in-flight distributed scan
// — the Cancel frame aborts the worker-side ExecutePartial through its
// per-call context. For the demo both sides run in one process on
// loopback listeners; in a real deployment each worker is its own
// process on its own machine.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"
	"time"

	"modelardb"
	"modelardb/internal/cluster"
	"modelardb/internal/core"
	"modelardb/internal/tsgen"
)

func main() {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	dataset := tsgen.EP(tsgen.EPConfig{Entities: 12, Ticks: 720, Seed: 3})
	cfg := modelardb.Config{
		ErrorBound: modelardb.RelBound(5),
		Dimensions: dataset.Dimensions,
		Correlations: []string{
			"Production 0, Measure 1 Production",
			"Production 0, Measure 1 Temperature",
		},
		// Every call the master issues fails over to an error when a
		// worker does not answer in time (and the worker-side scan is
		// cancelled), so one slow node bounds tail latency instead of
		// hanging the query.
		RPCTimeout: 5 * time.Second,
	}
	for _, s := range dataset.Series {
		cfg.Series = append(cfg.Series, modelardb.SeriesConfig{
			SI: s.SI, Source: s.Source, Members: s.Members,
		})
	}

	// Start two workers, each a full database served over TCP. Every
	// worker runs a write-ahead log, so an acknowledged Append survives
	// a worker crash: restart it from the same data and WAL directories
	// on the same address and the master's bounded reconnect-and-retry
	// carries re-queued batches and queries over to the replayed DB.
	const nWorkers = 2
	// Per-run directories: a crashed demo must not leak a stale journal
	// into the next run's workers.
	root, err := os.MkdirTemp("", "rpccluster-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)
	var addrs []string
	for i := 0; i < nWorkers; i++ {
		wcfg := cfg
		wcfg.Path = filepath.Join(root, fmt.Sprintf("w%d-data", i))
		wcfg.WALDir = filepath.Join(root, fmt.Sprintf("w%d-wal", i))
		wcfg.WALFsync = "interval"
		db, err := modelardb.Open(wcfg)
		if err != nil {
			log.Fatal(err)
		}
		defer db.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer ln.Close()
		go cluster.NewServer(db).Serve(ctx, ln)
		addrs = append(addrs, ln.Addr().String())
	}

	// The master owns the replicated metadata and routes by group.
	c, err := cluster.DialContext(ctx, cfg, addrs)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	fmt.Printf("master connected to %d workers: %v\n", nWorkers, addrs)

	start := time.Now()
	var points int64
	err = dataset.Points(func(p core.DataPoint) error {
		points++
		return c.Append(ctx, p.Tid, p.TS, p.Value)
	})
	if err == nil {
		err = c.Flush(ctx)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %d points over TCP in %s\n",
		points, time.Since(start).Round(time.Millisecond))

	// A validation error is caught on the master: no scatter happens.
	if _, err := c.Query(ctx, "SELECT Nope FROM Segment"); err != nil {
		fmt.Printf("validated on the master, no RPC issued: %v\n", err)
	}

	res, err := c.Query(ctx,
		"SELECT Category, SUM_S(*), COUNT_S(*) FROM Segment GROUP BY Category ORDER BY Category")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nscatter/merge aggregate: %v\n", res.Columns)
	for _, row := range res.Rows {
		fmt.Printf("  %v\n", row)
	}

	// Cancelling the master-side context aborts the distributed scan:
	// the call returns immediately and Cancel frames stop the workers.
	qctx, qcancel := context.WithCancel(ctx)
	qcancel()
	if _, err := c.Query(qctx, "SELECT SUM_S(*) FROM Segment"); errors.Is(err, context.Canceled) {
		fmt.Println("\ncancelled scatter returned context.Canceled; workers aborted")
	}

	stats, err := c.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncluster totals: %d segments, %d bytes, %d points, %d WAL bytes\n",
		stats.Segments, stats.StorageBytes, stats.DataPoints, stats.WALBytes)
}
