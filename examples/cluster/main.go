// Cluster: distributed ingestion and query processing (§3.1). The
// master partitions series into groups, assigns each group to the
// least-loaded worker, routes ingestion so a group's series are always
// co-located, and answers queries by merging the workers' partial
// aggregate states — no data is shuffled, the property behind the
// paper's linear scale-out (Fig. 20).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"modelardb"
	"modelardb/internal/cluster"
	"modelardb/internal/core"
	"modelardb/internal/tsgen"
)

func main() {
	// The context bounds the cluster's lifetime: cancelling it aborts
	// every in-flight scatter query on all workers.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	dataset := tsgen.EP(tsgen.EPConfig{Entities: 12, Ticks: 720, Seed: 3})
	cfg := modelardb.Config{
		ErrorBound: modelardb.RelBound(5),
		Dimensions: dataset.Dimensions,
		Correlations: []string{
			"Production 0, Measure 1 Production",
			"Production 0, Measure 1 Temperature",
		},
	}
	for _, s := range dataset.Series {
		cfg.Series = append(cfg.Series, modelardb.SeriesConfig{
			SI: s.SI, Source: s.Source, Members: s.Members,
		})
	}

	c, err := cluster.NewLocal(ctx, cfg, 4)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	fmt.Printf("cluster with %d workers\n", c.NumWorkers())

	// Ingestion is routed by group: a group's series always land on the
	// same worker. Points travel in batches through AppendBatch, which
	// takes each destination group's shard lock once per batch.
	start := time.Now()
	var points int64
	batch := make([]modelardb.DataPoint, 0, 1024)
	err = dataset.Points(func(p core.DataPoint) error {
		points++
		batch = append(batch, p)
		if len(batch) == cap(batch) {
			if err := c.AppendBatch(ctx, batch); err != nil {
				return err
			}
			batch = batch[:0]
		}
		return nil
	})
	if err == nil {
		err = c.AppendBatch(ctx, batch)
	}
	if err != nil {
		log.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %d points in %s\n", points, time.Since(start).Round(time.Millisecond))

	for tid := modelardb.Tid(1); tid <= 8; tid += 4 {
		w, _ := c.WorkerOf(tid)
		fmt.Printf("series %d is owned by worker %d\n", tid, w)
	}

	res, times, err := c.QueryWithStats(ctx,
		"SELECT Category, SUM_S(*), COUNT_S(*) FROM Segment GROUP BY Category ORDER BY Category")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nscatter/gather aggregate: %v\n", res.Columns)
	for _, row := range res.Rows {
		fmt.Printf("  %v\n", row)
	}
	fmt.Println("per-worker partial execution times:")
	for i, d := range times {
		fmt.Printf("  worker %d: %s\n", i, d.Round(time.Microsecond))
	}

	stats, err := c.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncluster totals: %d segments, %d bytes, %d points\n",
		stats.Segments, stats.StorageBytes, stats.DataPoints)
}
