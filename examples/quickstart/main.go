// Quickstart: open an in-memory ModelarDB, ingest two correlated
// sensors, and run aggregate queries on models through the Segment
// View.
package main

import (
	"fmt"
	"log"
	"math"

	"modelardb"
)

func main() {
	db, err := modelardb.Open(modelardb.Config{
		// Reconstructed values may deviate up to 1% from the ingested
		// values; 0 would make storage lossless.
		ErrorBound: modelardb.RelBound(1),
		Dimensions: []modelardb.Dimension{
			{Name: "Location", Levels: []string{"Park", "Turbine"}},
		},
		// Series in the same park are correlated and compressed
		// together with one model per segment (MMGC).
		Correlations: []string{"Location 1"},
		Series: []modelardb.SeriesConfig{
			{SI: 1000, Members: map[string][]string{"Location": {"Aalborg", "T1"}}},
			{SI: 1000, Members: map[string][]string{"Location": {"Aalborg", "T2"}}},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Ingest one hour of 1 Hz temperature-like data for both turbines.
	for tick := 0; tick < 3600; tick++ {
		ts := int64(tick) * 1000
		base := 20 + 5*math.Sin(float64(tick)/600)
		if err := db.Append(1, ts, float32(base)); err != nil {
			log.Fatal(err)
		}
		if err := db.Append(2, ts, float32(base+0.1)); err != nil {
			log.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		log.Fatal(err)
	}

	stats, err := db.Stats()
	if err != nil {
		log.Fatal(err)
	}
	raw := stats.DataPoints * 16
	fmt.Printf("ingested %d points; stored %d bytes (raw %d, %.1fx compression)\n",
		stats.DataPoints, stats.StorageBytes, raw, float64(raw)/float64(stats.StorageBytes))

	for _, sql := range []string{
		"SELECT Tid, MIN_S(*), MAX_S(*), AVG_S(*) FROM Segment GROUP BY Tid ORDER BY Tid",
		"SELECT Turbine, CUBE_SUM_MINUTE(*) FROM Segment GROUP BY Turbine ORDER BY Turbine LIMIT 4",
		"SELECT TS, Value FROM DataPoint WHERE Tid = 1 AND TS BETWEEN 5000 AND 8000",
	} {
		res, err := db.Query(sql)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s\n", sql)
		fmt.Println(res.Columns)
		for _, row := range res.Rows {
			fmt.Println(row)
		}
	}
}
