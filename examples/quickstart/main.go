// Quickstart: open an in-memory ModelarDB, ingest two correlated
// sensors through the batched v2 API, and query the models through
// the Segment View — materialized (Query), prepared (Prepare)
// and streamed (QueryRows).
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"modelardb"
)

func main() {
	db, err := modelardb.Open(modelardb.Config{
		// Reconstructed values may deviate up to 1% from the ingested
		// values; 0 would make storage lossless.
		ErrorBound: modelardb.RelBound(1),
		Dimensions: []modelardb.Dimension{
			{Name: "Location", Levels: []string{"Park", "Turbine"}},
		},
		// Series in the same park are correlated and compressed
		// together with one model per segment (MMGC).
		Correlations: []string{"Location 1"},
		Series: []modelardb.SeriesConfig{
			{SI: 1000, Members: map[string][]string{"Location": {"Aalborg", "T1"}}},
			{SI: 1000, Members: map[string][]string{"Location": {"Aalborg", "T2"}}},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Ingest one hour of 1 Hz temperature-like data for both turbines,
	// batched: AppendBatch takes each group's shard lock once per batch
	// and concurrent writers to different groups never serialize.
	ctx := context.Background()
	batch := make([]modelardb.DataPoint, 0, 2*3600)
	for tick := 0; tick < 3600; tick++ {
		ts := int64(tick) * 1000
		base := 20 + 5*math.Sin(float64(tick)/600)
		batch = append(batch,
			modelardb.DataPoint{Tid: 1, TS: ts, Value: float32(base)},
			modelardb.DataPoint{Tid: 2, TS: ts, Value: float32(base + 0.1)},
		)
	}
	if err := db.AppendBatch(ctx, batch); err != nil {
		log.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		log.Fatal(err)
	}

	stats, err := db.Stats()
	if err != nil {
		log.Fatal(err)
	}
	raw := stats.DataPoints * 16
	fmt.Printf("ingested %d points; stored %d bytes (raw %d, %.1fx compression)\n",
		stats.DataPoints, stats.StorageBytes, raw, float64(raw)/float64(stats.StorageBytes))

	for _, sql := range []string{
		"SELECT Tid, MIN_S(*), MAX_S(*), AVG_S(*) FROM Segment GROUP BY Tid ORDER BY Tid",
		"SELECT Turbine, CUBE_SUM_MINUTE(*) FROM Segment GROUP BY Turbine ORDER BY Turbine LIMIT 4",
	} {
		res, err := db.Query(ctx, sql)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s\n", sql)
		fmt.Println(res.Columns)
		for _, row := range res.Rows {
			fmt.Println(row)
		}
	}

	// A point query served as a streaming cursor: rows arrive as the
	// scan produces them, and Close would stop the scan early.
	sql := "SELECT TS, Value FROM DataPoint WHERE Tid = 1 AND TS BETWEEN 5000 AND 8000"
	rows, err := db.QueryRows(ctx, sql)
	if err != nil {
		log.Fatal(err)
	}
	defer rows.Close()
	fmt.Printf("\n%s\n", sql)
	fmt.Println(rows.Columns())
	for rows.Next() {
		var ts int64
		var v float64
		if err := rows.Scan(&ts, &v); err != nil {
			log.Fatal(err)
		}
		fmt.Println(ts, v)
	}
	if err := rows.Err(); err != nil {
		log.Fatal(err)
	}

	// A prepared statement parses once and executes many times.
	stmt, err := db.Prepare("SELECT Turbine, AVG_S(*) FROM Segment GROUP BY Turbine ORDER BY Turbine")
	if err != nil {
		log.Fatal(err)
	}
	defer stmt.Close()
	for i := 0; i < 2; i++ {
		res, err := stmt.Query(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nprepared run %d: %v %v\n", i+1, res.Columns, res.Rows)
	}
}
