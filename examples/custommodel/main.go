// Custommodel: the user-defined model extension API (§3.1 — "users can
// optionally implement more models through an extension API without
// recompiling ModelarDB"). The example registers a two-segment
// piecewise-constant "Step" model that captures level shifts a single
// PMC model would reject, and shows the ingestion pipeline picking it
// when it compresses best.
package main

import (
	"context"
	"encoding/binary"
	"fmt"
	"log"
	"math"
	"math/rand"

	"modelardb"
)

// stepType is a user-defined ModelType: a constant level that may
// switch once to a second level. Parameters: both levels as float32
// plus the switch index as uint16.
type stepType struct{}

func (stepType) MID() modelardb.MID { return modelardb.MID(80) }
func (stepType) Name() string       { return "Step" }

func (stepType) New(bound modelardb.ErrorBound, nseries int) modelardb.Model {
	return &stepModel{bound: bound}
}

func (stepType) View(params []byte, nseries, length int) (modelardb.AggView, error) {
	if len(params) != 10 {
		return nil, fmt.Errorf("step: parameters must be 10 bytes, got %d", len(params))
	}
	return &stepView{
		a:       math.Float32frombits(binary.LittleEndian.Uint32(params[0:4])),
		b:       math.Float32frombits(binary.LittleEndian.Uint32(params[4:8])),
		switch_: int(binary.LittleEndian.Uint16(params[8:10])),
		n:       nseries,
		l:       length,
	}, nil
}

type stepModel struct {
	bound   modelardb.ErrorBound
	a, b    float64
	switch_ int // first index at level b; == length while on level a
	length  int
	onB     bool
}

func (m *stepModel) Append(values []float32) bool {
	lo, hi := math.Inf(-1), math.Inf(1)
	for _, v := range values {
		l, h := m.bound.Interval(float64(v))
		lo, hi = math.Max(lo, l), math.Min(hi, h)
	}
	if lo > hi {
		return false
	}
	level := &m.a
	if m.onB {
		level = &m.b
	}
	switch {
	case m.length == 0:
		m.a = (lo + hi) / 2
	case *level >= lo && *level <= hi:
		// Current level still fits.
	case !m.onB:
		// First level broke: switch to the second level.
		m.onB = true
		m.switch_ = m.length
		m.b = (lo + hi) / 2
	default:
		return false
	}
	m.length++
	return true
}

func (m *stepModel) Length() int { return m.length }

func (m *stepModel) Bytes(length int) ([]byte, error) {
	if length < 1 || length > m.length {
		return nil, fmt.Errorf("step: Bytes(%d) outside [1, %d]", length, m.length)
	}
	sw := m.switch_
	if !m.onB || sw > length {
		sw = length
	}
	out := make([]byte, 10)
	binary.LittleEndian.PutUint32(out[0:4], math.Float32bits(float32(m.a)))
	binary.LittleEndian.PutUint32(out[4:8], math.Float32bits(float32(m.b)))
	binary.LittleEndian.PutUint16(out[8:10], uint16(sw))
	return out, nil
}

type stepView struct {
	a, b    float32
	switch_ int
	n, l    int
}

func (v *stepView) Length() int    { return v.l }
func (v *stepView) NumSeries() int { return v.n }

func (v *stepView) ValueAt(series, i int) float32 {
	if i < v.switch_ {
		return v.a
	}
	return v.b
}

func (v *stepView) SumRange(series, i0, i1 int) float64 {
	sum := 0.0
	for i := i0; i <= i1; i++ {
		sum += float64(v.ValueAt(series, i))
	}
	return sum
}

func (v *stepView) MinRange(series, i0, i1 int) float64 {
	mn := float64(v.ValueAt(series, i0))
	for i := i0 + 1; i <= i1; i++ {
		mn = math.Min(mn, float64(v.ValueAt(series, i)))
	}
	return mn
}

func (v *stepView) MaxRange(series, i0, i1 int) float64 {
	mx := float64(v.ValueAt(series, i0))
	for i := i0 + 1; i <= i1; i++ {
		mx = math.Max(mx, float64(v.ValueAt(series, i)))
	}
	return mx
}

func main() {
	db, err := modelardb.Open(modelardb.Config{
		ErrorBound: modelardb.RelBound(1),
		Dimensions: []modelardb.Dimension{
			{Name: "Location", Levels: []string{"Park"}},
		},
		Series: []modelardb.SeriesConfig{
			{SI: 1000, Members: map[string][]string{"Location": {"Aalborg"}}},
		},
		// The extension API: Step is tried after PMC, Swing and Gorilla.
		Models: []modelardb.ModelType{stepType{}},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// A noisy square wave: constant runs with level shifts every 20
	// ticks plus measurement noise inside the error bound. A single PMC
	// or Swing model breaks at each shift; Gorilla stores every noisy
	// mantissa; the Step model represents two runs with 10 bytes.
	rng := rand.New(rand.NewSource(1))
	for tick := 0; tick < 400; tick++ {
		level := 10.0
		if (tick/20)%2 == 1 {
			level = 55
		}
		level += rng.Float64()*0.08 - 0.04 // noise within the 1% bound
		if err := db.Append(1, int64(tick)*1000, float32(level)); err != nil {
			log.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		log.Fatal(err)
	}

	usage, err := db.ModelUsage()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model usage with the user-defined Step model: %v\n", usage)

	res, err := db.Query(context.Background(), "SELECT MIN_S(*), MAX_S(*), AVG_S(*) FROM Segment")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("aggregates on mixed builtin + user-defined models: %v %v\n", res.Columns, res.Rows[0])
	stats, _ := db.Stats()
	fmt.Printf("storage: %d bytes for %d points\n", stats.StorageBytes, stats.DataPoints)
}
